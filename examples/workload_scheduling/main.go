// Workload scheduling: the delayed-execution energy trade the paper's
// related work surveys (§2) and its future work calls for (§6, "entire
// workloads"). A sparse stream of report queries hits a 4-node cluster;
// we compare running each query on arrival against batching arrivals
// into 60-second windows.
//
//	go run ./examples/workload_scheduling
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	// Eight Q3 joins arriving 15 s apart.
	wl := sched.Periodic(workload.Q3Join(10, 0.05, 0.05, pstore.DualShuffle), 8, 15)
	mk := func() (*cluster.Cluster, error) {
		return cluster.New(cluster.Homogeneous(4, hw.ClusterV()))
	}
	cfg := pstore.Config{WarmCache: true, BatchRows: 200_000}

	imm, bat, err := sched.Compare(mk, cfg, wl, 60)
	if err != nil {
		log.Fatal(err)
	}
	// The fully simulated power-managed run (nodes suspend between
	// batches; the tail beyond the makespan is charged at the sleep rate).
	cm, err := mk()
	if err != nil {
		log.Fatal(err)
	}
	man, err := sched.RunManaged(cm, cfg, wl, sched.Batched{Window: 60})
	if err != nil {
		log.Fatal(err)
	}
	horizon := math.Max(imm.Makespan, bat.Makespan)

	// A power-managed cluster can sleep through idle gaps: 10% of idle
	// power asleep, 10 s to wake.
	sleepW := imm.IdleWatts * 0.10
	const wake = 10.0

	fmt.Printf("workload: %d joins over %.0f s on a 4-node cluster\n\n", len(wl), wl.Span())
	fmt.Printf("%-18s %14s %14s %14s %16s\n", "policy", "mean resp (s)", "max resp (s)", "energy (kJ)*", "w/ sleep (kJ)*")
	for _, r := range []sched.Result{imm, bat} {
		fmt.Printf("%-18s %14.1f %14.1f %14.1f %16.1f\n",
			r.Policy, r.MeanResp, r.MaxResp, r.EnergyOver(horizon)/1000,
			r.EnergyWithSleep(horizon, sleepW, wake)/1000)
	}
	// The managed run meters its own sleep; its EnergyOver already uses
	// the sleep-aware tail rate, so both columns show the same number.
	fmt.Printf("%-18s %14.1f %14.1f %14.1f %16.1f\n",
		man.Policy, man.MeanResp, man.MaxResp, man.EnergyOver(horizon)/1000,
		man.EnergyOver(horizon)/1000)
	fmt.Printf("\n* over the common %.0f s horizon (unmanaged idle draws f(G) watts;\n"+
		"  the managed tail is charged at the suspended rate)\n\n", horizon)

	save := 1 - bat.EnergyWithSleep(horizon, sleepW, wake)/imm.EnergyWithSleep(horizon, sleepW, wake)
	fmt.Printf("batching alone barely moves energy — each query saturates the cluster\n")
	fmt.Printf("while it runs. Its value is consolidating idle time: with power-managed\n")
	fmt.Printf("nodes (sleep at %.0f W, %.0f s wake) the batched schedule saves %.0f%%,\n", sleepW, wake, save*100)
	fmt.Println("paying with queueing latency — the consolidation trade of the paper's §2.")
}
