// Quickstart: build a simulated 8-node database cluster, run a parallel
// hash join on it, and read off response time, energy, and the
// energy-delay product.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/workload"
)

func main() {
	// An 8-node cluster of the paper's cluster-V servers (Table 1):
	// dual-X5550 boxes, 1 Gb/s network, power model fitted from iLO2.
	c, err := cluster.New(cluster.Homogeneous(8, hw.ClusterV()))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's workhorse query: TPC-H Q3's LINEITEM ⋈ ORDERS hash
	// join at scale factor 100, 5% predicates on both tables, executed
	// as a dual shuffle because neither table is partitioned on the
	// join key.
	spec := workload.Q3Join(100, 0.05, 0.05, pstore.DualShuffle)

	res, joules, err := pstore.RunJoin(c, pstore.Config{WarmCache: true}, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("join finished in %.1f s (build %.1f s, probe %.1f s)\n",
		res.Seconds, res.BuildSeconds, res.ProbeSeconds)
	fmt.Printf("cluster energy: %.1f kJ\n", joules/1000)
	fmt.Printf("energy-delay product: %.0f kJ·s\n", joules*res.Seconds/1000)
	fmt.Printf("join output: %d rows\n", res.OutputRows)

	// Now halve the cluster and observe the paper's core effect: the
	// network-bottlenecked shuffle gives sub-linear speedup, so 4 nodes
	// consume LESS total energy for the same query.
	c4, err := cluster.New(cluster.Homogeneous(4, hw.ClusterV()))
	if err != nil {
		log.Fatal(err)
	}
	res4, joules4, err := pstore.RunJoin(c4, pstore.Config{WarmCache: true}, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhalf cluster: %.1f s (%.2fx slower) but %.1f kJ (%.0f%% energy saving)\n",
		res4.Seconds, res4.Seconds/res.Seconds, joules4/1000, (1-joules4/joules)*100)
}
