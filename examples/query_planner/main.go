// Query planner: let the engine's energy-aware optimizer (§6: "using
// initial hardware calibration data and query optimizer information")
// pick the physical plan for a join as the predicate selectivity varies,
// then execute each plan and report time and energy.
//
//	go run ./examples/query_planner
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func main() {
	mk := func() *cluster.Cluster {
		c, err := cluster.New(cluster.Mixed(2, hw.BeefyL5630(), 2, hw.LaptopB()))
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	base := pstore.PlanRequest{
		Build: storage.TableDef{Table: tpch.Orders, SF: 100, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "O_CUSTKEY"},
		Probe: storage.TableDef{Table: tpch.Lineitem, SF: 100, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "L_SHIPDATE"},
		BuildKeyColumn: "O_ORDERKEY", ProbeKeyColumn: "L_ORDERKEY",
	}

	fmt.Println("LINEITEM ⋈ ORDERS on a 2 Beefy + 2 Wimpy cluster (SF 100)")
	fmt.Printf("%-22s %-16s %-14s %10s %10s\n", "selectivities", "chosen plan", "execution", "time (s)", "kJ")
	for _, sel := range [][2]float64{
		{0.001, 0.50}, // tiny build side
		{0.05, 0.50},  // moderate
		{0.50, 0.50},  // huge hash table
	} {
		req := base
		req.BuildSel, req.ProbeSel = sel[0], sel[1]
		c := mk()
		plan, err := pstore.PlanJoin(c, req)
		if err != nil {
			log.Fatal(err)
		}
		mode := "homogeneous"
		if len(plan.Spec.BuildNodes) > 0 {
			mode = fmt.Sprintf("hetero (%dB)", len(plan.Spec.BuildNodes))
		}
		res, joules, err := pstore.RunJoin(c, pstore.Config{WarmCache: true, BatchRows: 200_000}, plan.Spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("O %5.1f%% / L %5.1f%%   %-16s %-14s %10.1f %10.1f\n",
			sel[0]*100, sel[1]*100, plan.Spec.Method, mode, res.Seconds, joules/1000)
	}

	fmt.Println("\nthe optimizer's reasoning for the last plan:")
	c := mk()
	req := base
	req.BuildSel, req.ProbeSel = 0.50, 0.50
	plan, _ := pstore.PlanJoin(c, req)
	fmt.Println("  " + plan.Explain())
}
