// Workload-stream service mode: the heavy-traffic scenario of the
// ROADMAP's north star, in process. Two tenants hit a small service —
// a hot dashboard fleet flooding one join shape and a quiet ad-hoc
// tenant trickling requests. Per-tenant admission quotas shed only the
// flood, deficit-round-robin fair queueing keeps the quiet tenant's
// latency flat, and repeated identical joins are answered from the
// shared in-memory cache instead of re-simulating.
//
//	go run ./examples/service_stream
//
// The same service runs standalone as cmd/serve (JSON lines on stdin,
// an HTTP endpoint, or the -load trace-replay harness).
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/workload"
)

func main() {
	cache := pstore.NewCache(nil)
	srv, err := service.New(service.Config{
		Admission: service.Admission{
			QueueDepth: 8,
			// The quiet tenant gets a modest waiting room of its own; the
			// hot tenant's flood can only fill the hot queue.
			Tenants: map[string]service.Tenant{
				"dashboards": {QueueDepth: 8, Weight: 1},
				"adhoc":      {QueueDepth: 4, Weight: 1},
			},
		},
		Execution: service.Execution{
			Workers: 2,
			Runner:  cache,
			Engine:  pstore.Config{WarmCache: true, BatchRows: 200_000},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A burst of 200 requests: four distinct report queries, cycled — the
	// shape of a dashboard fleet hammering the same joins. Every fourth
	// request is low priority (a background refresh).
	shapes := []workload.JoinRequest{
		{SF: 5, BuildSel: 0.05, ProbeSel: 0.05},
		{SF: 5, BuildSel: 0.10, ProbeSel: 0.02},
		{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "broadcast"},
		{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "prepartitioned"},
	}
	const n = 200
	responses := make([]report.ServiceResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant, priority := "dashboards", ""
			if i%10 == 0 {
				tenant = "adhoc" // the quiet tenant's trickle
			} else if i%4 == 0 {
				priority = "low"
			}
			jr := shapes[i%len(shapes)]
			responses[i] = srv.Do(service.Request{
				V:        1,
				ID:       fmt.Sprintf("q%d", i),
				Tenant:   tenant,
				Priority: priority,
				Join:     &jr,
			})
		}()
	}
	wg.Wait()

	// One design request rides along: "what cluster should run this?"
	design := srv.Do(service.Request{
		ID: "d0", Tenant: "adhoc",
		Design: &service.DesignRequest{
			BuildGB: 700, ProbeGB: 2800, Nodes: 8, Target: 0.6,
			BuildSel: 0.10, ProbeSel: 0.02,
		},
	})
	srv.Close()

	var ok, shed, hits int
	for _, r := range responses {
		switch r.Status {
		case "ok":
			ok++
			if r.Cache == "hit" {
				hits++
			}
		case "shed":
			shed++
		}
	}
	fmt.Printf("burst of %d join requests, two tenants, 2 workers:\n", n)
	fmt.Printf("  answered %d (%d from cache, %d simulated), shed %d — none lost\n\n",
		ok, hits, ok-hits, shed)
	fmt.Printf("design request %s -> %s (predicted %.0f s, %.0f kJ)\n\n",
		design.ID, design.Design, design.Seconds, design.Joules/1000)

	m := srv.Metrics()
	fmt.Printf("aggregate: %.0f req/s, mean response %.2f ms, p99 %.2f ms, %.0f J per answered join\n",
		m.Throughput, m.MeanResponse*1000, m.P99*1000, m.JoulesPerQuery)
	for _, name := range []string{"dashboards", "adhoc"} {
		tm := m.Tenants[name]
		fmt.Printf("tenant %-10s received %3d, ok %3d, shed %3d, p99 %6.2f ms (queue p99 %6.2f ms)\n",
			name, tm.Received, tm.OK, tm.Shed, tm.P99*1000, tm.QueueP99*1000)
	}
	fmt.Printf("\ncache: %d hits, %d engine runs — identical streamed requests are\n",
		m.CacheHits, m.CacheMisses)
	fmt.Println("answered from memory, bit-identical to a fresh simulation.")
}
