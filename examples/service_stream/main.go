// Workload-stream service mode: the heavy-traffic scenario of the
// ROADMAP's north star, in process. A burst of join requests (plus one
// cluster-design request) hits a small service: a bounded worker pool
// admits what it can, sheds the overflow, and answers repeated identical
// joins from the shared in-memory cache instead of re-simulating them.
//
//	go run ./examples/service_stream
//
// The same service runs standalone as cmd/serve (JSON lines on stdin or
// an HTTP endpoint).
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/workload"
)

func main() {
	cache := pstore.NewCache(nil)
	srv, err := service.New(service.Config{
		Workers:    2,
		QueueDepth: 8,
		Runner:     cache,
		Engine:     pstore.Config{WarmCache: true, BatchRows: 200_000},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A burst of 200 requests: four distinct report queries, cycled — the
	// shape of a dashboard fleet hammering the same joins.
	shapes := []workload.JoinRequest{
		{SF: 5, BuildSel: 0.05, ProbeSel: 0.05},
		{SF: 5, BuildSel: 0.10, ProbeSel: 0.02},
		{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "broadcast"},
		{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "prepartitioned"},
	}
	const n = 200
	responses := make([]report.ServiceResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			responses[i] = srv.Do(service.Request{
				ID:          fmt.Sprintf("q%d", i),
				JoinRequest: shapes[i%len(shapes)],
			})
		}()
	}
	wg.Wait()

	// One design request rides along: "what cluster should run this?"
	design := srv.Do(service.Request{
		ID: "d0", Kind: "design",
		JoinRequest: workload.JoinRequest{BuildSel: 0.10, ProbeSel: 0.02},
		BuildGB:     700, ProbeGB: 2800, Nodes: 8, Target: 0.6,
	})
	srv.Close()

	var ok, shed, hits int
	for _, r := range responses {
		switch r.Status {
		case "ok":
			ok++
			if r.Cache == "hit" {
				hits++
			}
		case "shed":
			shed++
		}
	}
	fmt.Printf("burst of %d join requests at a 2-worker, depth-8 service:\n", n)
	fmt.Printf("  answered %d (%d from cache, %d simulated), shed %d — none lost\n\n",
		ok, hits, ok-hits, shed)
	fmt.Printf("design request %s -> %s (predicted %.0f s, %.0f kJ)\n\n",
		design.ID, design.Design, design.Seconds, design.Joules/1000)

	m := srv.Metrics()
	fmt.Printf("aggregate: %.0f req/s, mean response %.2f ms, %.0f J per answered join\n",
		m.Throughput, m.MeanResponse*1000, m.JoulesPerQuery)
	fmt.Printf("cache: %d hits, %d engine runs — identical streamed requests are\n",
		m.CacheHits, m.CacheMisses)
	fmt.Println("answered from memory, bit-identical to a fresh simulation.")
}
