// Selectivity sweep: how the best Beefy/Wimpy mix shifts with the
// probe-side predicate — the paper's Figure 11 effect, driven through
// the analytical model.
//
// As fewer LINEITEM rows qualify, the network stops being the
// bottleneck, Wimpy scan-and-filter nodes stop hurting performance, and
// the most energy-efficient design slides from all-Beefy toward
// Wimpy-heavy mixes.
//
//	go run ./examples/selectivity_sweep
package main

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
)

func main() {
	base := model.FromSpecs(8, hw.ClusterV(), 0, hw.WimpyModelNode())
	base.Bld, base.Sbld = 700_000, 0.10
	base.Prb = 2_800_000

	fmt.Println("ORDERS 10%; sweeping LINEITEM selectivity (8-node designs)")
	fmt.Printf("%-10s %-10s %-22s %s\n", "LINEITEM", "knee at", "best design (EDP)", "perf/energy at best")
	for _, sel := range []float64{0.10, 0.08, 0.06, 0.04, 0.02} {
		p := base
		p.Sprb = sel
		points := model.SweepMix(p, 8)

		knee := model.Knee(points, 0.05)

		// Pick the design with the lowest normalized EDP (energy/perf).
		best := points[0]
		bestEDP := 1.0
		for _, dp := range points {
			if dp.Err != nil || dp.NormPerf == 0 {
				continue
			}
			if edp := dp.NormEng / dp.NormPerf; edp < bestEDP {
				bestEDP, best = edp, dp
			}
		}
		fmt.Printf("%9.0f%% %-10s %-7s (EDP %.2f)       perf %.2f  energy %.2f\n",
			sel*100, points[knee].Label(), best.Label(), bestEDP,
			best.NormPerf, best.NormEng)
	}

	fmt.Println("\nreading: at 10% the join saturates Beefy ingestion immediately")
	fmt.Println("(knee at 8B,0W; no mix helps); by 2% the knee reaches 2B,6W and the")
	fmt.Println("Wimpy-heavy designs cut energy roughly in half at ~90% performance.")
}
